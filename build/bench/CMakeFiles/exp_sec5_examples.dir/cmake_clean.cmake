file(REMOVE_RECURSE
  "CMakeFiles/exp_sec5_examples.dir/exp_sec5_examples.cpp.o"
  "CMakeFiles/exp_sec5_examples.dir/exp_sec5_examples.cpp.o.d"
  "exp_sec5_examples"
  "exp_sec5_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec5_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
