# Empty compiler generated dependencies file for exp_sec5_examples.
# This may be replaced when dependencies are built.
