# Empty compiler generated dependencies file for exp_avg_dilation.
# This may be replaced when dependencies are built.
