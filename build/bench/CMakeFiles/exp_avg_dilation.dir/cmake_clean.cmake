file(REMOVE_RECURSE
  "CMakeFiles/exp_avg_dilation.dir/exp_avg_dilation.cpp.o"
  "CMakeFiles/exp_avg_dilation.dir/exp_avg_dilation.cpp.o.d"
  "exp_avg_dilation"
  "exp_avg_dilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_avg_dilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
