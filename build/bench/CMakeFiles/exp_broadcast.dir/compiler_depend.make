# Empty compiler generated dependencies file for exp_broadcast.
# This may be replaced when dependencies are built.
