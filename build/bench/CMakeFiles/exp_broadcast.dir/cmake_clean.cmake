file(REMOVE_RECURSE
  "CMakeFiles/exp_broadcast.dir/exp_broadcast.cpp.o"
  "CMakeFiles/exp_broadcast.dir/exp_broadcast.cpp.o.d"
  "exp_broadcast"
  "exp_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
