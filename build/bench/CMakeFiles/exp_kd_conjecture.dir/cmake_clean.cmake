file(REMOVE_RECURSE
  "CMakeFiles/exp_kd_conjecture.dir/exp_kd_conjecture.cpp.o"
  "CMakeFiles/exp_kd_conjecture.dir/exp_kd_conjecture.cpp.o.d"
  "exp_kd_conjecture"
  "exp_kd_conjecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_kd_conjecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
