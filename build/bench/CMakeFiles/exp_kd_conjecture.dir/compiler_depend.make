# Empty compiler generated dependencies file for exp_kd_conjecture.
# This may be replaced when dependencies are built.
