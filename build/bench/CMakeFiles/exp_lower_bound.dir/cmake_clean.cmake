file(REMOVE_RECURSE
  "CMakeFiles/exp_lower_bound.dir/exp_lower_bound.cpp.o"
  "CMakeFiles/exp_lower_bound.dir/exp_lower_bound.cpp.o.d"
  "exp_lower_bound"
  "exp_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
