# Empty dependencies file for exp_lower_bound.
# This may be replaced when dependencies are built.
