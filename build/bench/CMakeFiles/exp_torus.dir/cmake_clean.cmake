file(REMOVE_RECURSE
  "CMakeFiles/exp_torus.dir/exp_torus.cpp.o"
  "CMakeFiles/exp_torus.dir/exp_torus.cpp.o.d"
  "exp_torus"
  "exp_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
