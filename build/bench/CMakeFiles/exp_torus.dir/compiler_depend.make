# Empty compiler generated dependencies file for exp_torus.
# This may be replaced when dependencies are built.
