file(REMOVE_RECURSE
  "CMakeFiles/exp_open_shapes.dir/exp_open_shapes.cpp.o"
  "CMakeFiles/exp_open_shapes.dir/exp_open_shapes.cpp.o.d"
  "exp_open_shapes"
  "exp_open_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_open_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
