# Empty dependencies file for exp_open_shapes.
# This may be replaced when dependencies are built.
