file(REMOVE_RECURSE
  "CMakeFiles/fig2_coverage.dir/fig2_coverage.cpp.o"
  "CMakeFiles/fig2_coverage.dir/fig2_coverage.cpp.o.d"
  "fig2_coverage"
  "fig2_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
