# Empty dependencies file for exp_2d_small.
# This may be replaced when dependencies are built.
