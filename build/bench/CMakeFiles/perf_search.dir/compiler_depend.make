# Empty compiler generated dependencies file for perf_search.
# This may be replaced when dependencies are built.
