file(REMOVE_RECURSE
  "CMakeFiles/perf_search.dir/perf_search.cpp.o"
  "CMakeFiles/perf_search.dir/perf_search.cpp.o.d"
  "perf_search"
  "perf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
