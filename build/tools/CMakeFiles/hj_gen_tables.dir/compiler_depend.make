# Empty compiler generated dependencies file for hj_gen_tables.
# This may be replaced when dependencies are built.
