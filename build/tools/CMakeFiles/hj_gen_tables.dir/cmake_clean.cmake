file(REMOVE_RECURSE
  "CMakeFiles/hj_gen_tables.dir/gen_tables.cpp.o"
  "CMakeFiles/hj_gen_tables.dir/gen_tables.cpp.o.d"
  "hj_gen_tables"
  "hj_gen_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_gen_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
