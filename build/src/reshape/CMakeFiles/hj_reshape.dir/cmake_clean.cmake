file(REMOVE_RECURSE
  "CMakeFiles/hj_reshape.dir/reshape.cpp.o"
  "CMakeFiles/hj_reshape.dir/reshape.cpp.o.d"
  "libhj_reshape.a"
  "libhj_reshape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_reshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
