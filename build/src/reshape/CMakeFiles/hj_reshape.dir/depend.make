# Empty dependencies file for hj_reshape.
# This may be replaced when dependencies are built.
