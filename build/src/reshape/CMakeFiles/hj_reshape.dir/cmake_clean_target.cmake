file(REMOVE_RECURSE
  "libhj_reshape.a"
)
