# CMake generated Testfile for 
# Source directory: /root/repo/src/reshape
# Build directory: /root/repo/build/src/reshape
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
