# Empty dependencies file for hj_hypersim.
# This may be replaced when dependencies are built.
