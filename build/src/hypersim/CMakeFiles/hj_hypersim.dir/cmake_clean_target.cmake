file(REMOVE_RECURSE
  "libhj_hypersim.a"
)
