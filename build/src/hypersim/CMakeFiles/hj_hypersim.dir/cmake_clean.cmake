file(REMOVE_RECURSE
  "CMakeFiles/hj_hypersim.dir/collectives.cpp.o"
  "CMakeFiles/hj_hypersim.dir/collectives.cpp.o.d"
  "CMakeFiles/hj_hypersim.dir/network.cpp.o"
  "CMakeFiles/hj_hypersim.dir/network.cpp.o.d"
  "libhj_hypersim.a"
  "libhj_hypersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_hypersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
