file(REMOVE_RECURSE
  "libhj_stats.a"
)
