file(REMOVE_RECURSE
  "CMakeFiles/hj_stats.dir/gray_fraction.cpp.o"
  "CMakeFiles/hj_stats.dir/gray_fraction.cpp.o.d"
  "libhj_stats.a"
  "libhj_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
