# Empty compiler generated dependencies file for hj_stats.
# This may be replaced when dependencies are built.
