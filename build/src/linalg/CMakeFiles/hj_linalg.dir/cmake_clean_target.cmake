file(REMOVE_RECURSE
  "libhj_linalg.a"
)
