# Empty compiler generated dependencies file for hj_linalg.
# This may be replaced when dependencies are built.
