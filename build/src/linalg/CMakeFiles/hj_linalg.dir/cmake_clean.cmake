file(REMOVE_RECURSE
  "CMakeFiles/hj_linalg.dir/cannon.cpp.o"
  "CMakeFiles/hj_linalg.dir/cannon.cpp.o.d"
  "CMakeFiles/hj_linalg.dir/matvec.cpp.o"
  "CMakeFiles/hj_linalg.dir/matvec.cpp.o.d"
  "libhj_linalg.a"
  "libhj_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
