
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cannon.cpp" "src/linalg/CMakeFiles/hj_linalg.dir/cannon.cpp.o" "gcc" "src/linalg/CMakeFiles/hj_linalg.dir/cannon.cpp.o.d"
  "/root/repo/src/linalg/matvec.cpp" "src/linalg/CMakeFiles/hj_linalg.dir/matvec.cpp.o" "gcc" "src/linalg/CMakeFiles/hj_linalg.dir/matvec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hypersim/CMakeFiles/hj_hypersim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
