# Empty dependencies file for hj_search.
# This may be replaced when dependencies are built.
