file(REMOVE_RECURSE
  "CMakeFiles/hj_search.dir/anneal.cpp.o"
  "CMakeFiles/hj_search.dir/anneal.cpp.o.d"
  "CMakeFiles/hj_search.dir/backtrack.cpp.o"
  "CMakeFiles/hj_search.dir/backtrack.cpp.o.d"
  "libhj_search.a"
  "libhj_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
