file(REMOVE_RECURSE
  "libhj_search.a"
)
