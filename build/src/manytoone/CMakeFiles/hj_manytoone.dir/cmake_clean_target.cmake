file(REMOVE_RECURSE
  "libhj_manytoone.a"
)
