file(REMOVE_RECURSE
  "CMakeFiles/hj_manytoone.dir/manytoone.cpp.o"
  "CMakeFiles/hj_manytoone.dir/manytoone.cpp.o.d"
  "libhj_manytoone.a"
  "libhj_manytoone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_manytoone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
