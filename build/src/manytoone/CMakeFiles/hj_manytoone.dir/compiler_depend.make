# Empty compiler generated dependencies file for hj_manytoone.
# This may be replaced when dependencies are built.
