file(REMOVE_RECURSE
  "CMakeFiles/hj_torus.dir/torus.cpp.o"
  "CMakeFiles/hj_torus.dir/torus.cpp.o.d"
  "libhj_torus.a"
  "libhj_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
