file(REMOVE_RECURSE
  "libhj_torus.a"
)
