# Empty dependencies file for hj_torus.
# This may be replaced when dependencies are built.
