
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/hj_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/direct.cpp" "src/core/CMakeFiles/hj_core.dir/direct.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/direct.cpp.o.d"
  "/root/repo/src/core/embedding.cpp" "src/core/CMakeFiles/hj_core.dir/embedding.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/embedding.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/hj_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/io.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/hj_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/product.cpp" "src/core/CMakeFiles/hj_core.dir/product.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/product.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/hj_core.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/router.cpp.o.d"
  "/root/repo/src/core/shape.cpp" "src/core/CMakeFiles/hj_core.dir/shape.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/shape.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/hj_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/hj_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
