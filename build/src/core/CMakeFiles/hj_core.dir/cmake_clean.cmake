file(REMOVE_RECURSE
  "CMakeFiles/hj_core.dir/coverage.cpp.o"
  "CMakeFiles/hj_core.dir/coverage.cpp.o.d"
  "CMakeFiles/hj_core.dir/direct.cpp.o"
  "CMakeFiles/hj_core.dir/direct.cpp.o.d"
  "CMakeFiles/hj_core.dir/embedding.cpp.o"
  "CMakeFiles/hj_core.dir/embedding.cpp.o.d"
  "CMakeFiles/hj_core.dir/io.cpp.o"
  "CMakeFiles/hj_core.dir/io.cpp.o.d"
  "CMakeFiles/hj_core.dir/planner.cpp.o"
  "CMakeFiles/hj_core.dir/planner.cpp.o.d"
  "CMakeFiles/hj_core.dir/product.cpp.o"
  "CMakeFiles/hj_core.dir/product.cpp.o.d"
  "CMakeFiles/hj_core.dir/router.cpp.o"
  "CMakeFiles/hj_core.dir/router.cpp.o.d"
  "CMakeFiles/hj_core.dir/shape.cpp.o"
  "CMakeFiles/hj_core.dir/shape.cpp.o.d"
  "CMakeFiles/hj_core.dir/verify.cpp.o"
  "CMakeFiles/hj_core.dir/verify.cpp.o.d"
  "libhj_core.a"
  "libhj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
