file(REMOVE_RECURSE
  "libhj_core.a"
)
