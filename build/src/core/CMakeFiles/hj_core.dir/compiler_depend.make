# Empty compiler generated dependencies file for hj_core.
# This may be replaced when dependencies are built.
