file(REMOVE_RECURSE
  "CMakeFiles/hj_embed.dir/hj_embed_cli.cpp.o"
  "CMakeFiles/hj_embed.dir/hj_embed_cli.cpp.o.d"
  "hj_embed"
  "hj_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
