# Empty compiler generated dependencies file for hj_embed.
# This may be replaced when dependencies are built.
