# Empty compiler generated dependencies file for hj_cannon_multiply.
# This may be replaced when dependencies are built.
