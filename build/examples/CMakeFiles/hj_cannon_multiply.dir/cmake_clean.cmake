file(REMOVE_RECURSE
  "CMakeFiles/hj_cannon_multiply.dir/cannon_multiply.cpp.o"
  "CMakeFiles/hj_cannon_multiply.dir/cannon_multiply.cpp.o.d"
  "hj_cannon_multiply"
  "hj_cannon_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_cannon_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
