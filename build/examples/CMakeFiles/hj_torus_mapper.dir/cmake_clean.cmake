file(REMOVE_RECURSE
  "CMakeFiles/hj_torus_mapper.dir/torus_mapper.cpp.o"
  "CMakeFiles/hj_torus_mapper.dir/torus_mapper.cpp.o.d"
  "hj_torus_mapper"
  "hj_torus_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_torus_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
