# Empty compiler generated dependencies file for hj_torus_mapper.
# This may be replaced when dependencies are built.
