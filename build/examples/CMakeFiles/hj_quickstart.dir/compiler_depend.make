# Empty compiler generated dependencies file for hj_quickstart.
# This may be replaced when dependencies are built.
