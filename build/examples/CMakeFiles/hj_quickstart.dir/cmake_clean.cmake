file(REMOVE_RECURSE
  "CMakeFiles/hj_quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/hj_quickstart.dir/quickstart.cpp.o.d"
  "hj_quickstart"
  "hj_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
