# Empty dependencies file for hj_jacobi_on_cube.
# This may be replaced when dependencies are built.
