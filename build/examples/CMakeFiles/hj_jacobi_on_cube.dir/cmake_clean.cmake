file(REMOVE_RECURSE
  "CMakeFiles/hj_jacobi_on_cube.dir/jacobi_on_cube.cpp.o"
  "CMakeFiles/hj_jacobi_on_cube.dir/jacobi_on_cube.cpp.o.d"
  "hj_jacobi_on_cube"
  "hj_jacobi_on_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_jacobi_on_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
