# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hj_jacobi_on_cube.
