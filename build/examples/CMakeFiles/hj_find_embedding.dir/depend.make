# Empty dependencies file for hj_find_embedding.
# This may be replaced when dependencies are built.
