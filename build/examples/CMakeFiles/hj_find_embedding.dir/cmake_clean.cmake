file(REMOVE_RECURSE
  "CMakeFiles/hj_find_embedding.dir/find_embedding.cpp.o"
  "CMakeFiles/hj_find_embedding.dir/find_embedding.cpp.o.d"
  "hj_find_embedding"
  "hj_find_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_find_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
