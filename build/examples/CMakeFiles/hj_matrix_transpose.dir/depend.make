# Empty dependencies file for hj_matrix_transpose.
# This may be replaced when dependencies are built.
