file(REMOVE_RECURSE
  "CMakeFiles/hj_matrix_transpose.dir/matrix_transpose.cpp.o"
  "CMakeFiles/hj_matrix_transpose.dir/matrix_transpose.cpp.o.d"
  "hj_matrix_transpose"
  "hj_matrix_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_matrix_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
